//! Corpus replay: every minimized spec under `tests/corpus/` must keep
//! passing the full differential matrix, and must keep emitting a
//! structurally complete hybrid C program.
//!
//! The corpus is grown from CI: when the `spec-fuzz` job finds a
//! disagreement it uploads the auto-shrunk spec as `minimized.json`;
//! the fix lands together with that JSON checked in here, so the bug
//! can never silently return. Reproduce any entry from its seed with
//!
//! ```text
//! cargo run --release -p dpgen-fuzz -- --seed 0x<seed> --budget 1
//! ```

use dpgen::codegen::emit_c;
use dpgen::core::Program;
use dpgen::runtime::Schedule;
use dpgen_fuzz::{check_spec, full_matrix, load_corpus};
use std::path::Path;

fn corpus() -> Vec<(std::path::PathBuf, dpgen::core::GeneratedSpec)> {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let specs = load_corpus(&dir).expect("corpus must parse");
    assert!(
        specs.len() >= 5,
        "corpus has {} specs, expected at least 5",
        specs.len()
    );
    specs
}

/// Every corpus spec agrees with the naive reference interpreter on
/// every cell, across the whole thread x rank x fault x schedule matrix.
#[test]
fn corpus_specs_pass_the_differential_matrix() {
    let legs = full_matrix();
    // The replay matrix must include the static-schedule legs: corpus
    // bugs fixed under a Static or Mixed schedule stay covered forever.
    assert_eq!(legs.len(), 12);
    assert!(legs
        .iter()
        .any(|l| l.schedule == Schedule::Static && l.ranks == 1));
    assert!(legs
        .iter()
        .any(|l| l.schedule == Schedule::Static && l.ranks == 2));
    assert!(legs.iter().any(|l| l.schedule == Schedule::Mixed));
    for (path, gs) in corpus() {
        if let Err(failure) = check_spec(&gs, &legs) {
            panic!("{}: {failure}", path.display());
        }
    }
}

/// Every corpus spec round-trips through code generation: the emitted
/// hybrid C program is structurally complete (balanced delimiters, the
/// full function set, one pack/unpack pair per tile dependency).
#[test]
fn corpus_specs_emit_complete_programs() {
    for (path, gs) in corpus() {
        let name = path.display().to_string();
        let program = Program::from_spec(gs.spec.clone())
            .unwrap_or_else(|e| panic!("{name}: spec no longer builds: {e}"));
        let src = emit_c(&program);
        assert_eq!(
            src.matches('{').count(),
            src.matches('}').count(),
            "{name}: unbalanced braces"
        );
        assert_eq!(
            src.matches('(').count(),
            src.matches(')').count(),
            "{name}: unbalanced parens"
        );
        for needle in [
            "#include <mpi.h>",
            "#include <omp.h>",
            "#pragma omp parallel",
            "MPI_Init",
            "MPI_Finalize",
            "static int tile_in_space",
            "static void execute_tile",
            "static long tile_work",
            "int main(int argc, char** argv)",
        ] {
            assert!(src.contains(needle), "{name}: missing `{needle}`");
        }
        let ndeps = program.tiling().deps().len();
        for e in 0..ndeps {
            assert!(
                src.contains(&format!("pack_edge_{e}")),
                "{name}: missing pack_edge_{e}"
            );
            assert!(
                src.contains(&format!("unpack_edge_{e}")),
                "{name}: missing unpack_edge_{e}"
            );
        }
        assert!(
            src.contains(&format!("#define NDIMS {}", gs.spec.vars.len())),
            "{name}: NDIMS define missing or wrong"
        );
    }
}
