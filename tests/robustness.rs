//! Failure handling and edge cases across the stack.

use dpgen::core::{Program, ProgramError};
use dpgen::problems::{random_sequence, EditDistance};
use dpgen::runtime::{Probe, TilePriority};
use dpgen::tiling::tiling::CellRef;

fn count_kernel(cell: CellRef<'_>, values: &mut [u64]) {
    let a = if cell.valid[0] {
        values[cell.loc_r(0)]
    } else {
        1
    };
    let b = if cell.valid[1] {
        values[cell.loc_r(1)]
    } else {
        1
    };
    values[cell.loc] = a + b;
}

const TRIANGLE: &str = "name t\nvars x y\nparams N\n\
    constraint x >= 0\nconstraint y >= 0\nconstraint x + y <= N\n\
    template r1 1 0\ntemplate r2 0 1\nwidths 4 4\n";

#[test]
fn malformed_specs_are_rejected_not_panicking() {
    for bad in [
        "",                                                         // empty
        "vars x\n",                                                 // no constraints
        "vars x\nconstraint 0 <= x <= 5\n",                         // no widths
        "vars x\nconstraint 0 <= x <= 5\nwidths 0\n",               // zero width
        "vars x\nconstraint 0 <= x <= 5\nwidths 2\ntemplate r 0\n", // zero template
        "vars x y\nconstraint 0 <= x <= 5\nconstraint 0 <= y <= 5\nwidths 2 2\n\
         template a 1 0\ntemplate b -1 0\n", // mixed signs
        "vars x\nconstraint x >= 0\nwidths 2\n",                    // unbounded
        "vars x\nconstraint 0 <= x <= zz\nwidths 2\n",              // unknown name
    ] {
        assert!(Program::parse(bad).is_err(), "accepted: {bad:?}");
    }
}

#[test]
fn error_messages_are_informative() {
    let err = Program::parse("vars x\nbogus\n").unwrap_err();
    assert!(err.to_string().contains("line 2"), "{err}");
    let err = Program::parse("vars x\nconstraint x >= 0\nwidths 2\n").unwrap_err();
    match &err {
        ProgramError::Tiling(e) => assert!(e.to_string().contains("unbounded"), "{e}"),
        other => panic!("expected tiling error, got {other}"),
    }
}

#[test]
fn zero_size_problem_runs() {
    // N = 0: a single cell at the origin.
    let program = Program::parse(TRIANGLE).unwrap();
    let res = program.run_shared::<u64, _>(&[0], &count_kernel, &Probe::at(&[0, 0]), 4);
    assert_eq!(res.probes[0], Some(2)); // both deps invalid -> 1 + 1
    assert_eq!(res.stats.cells_computed, 1);
}

#[test]
fn probes_outside_space_are_none_not_panics() {
    let program = Program::parse(TRIANGLE).unwrap();
    let probe = Probe::many(&[&[0, 0], &[100, 100], &[-3, 0], &[3, 3]]);
    let res = program.run_shared::<u64, _>(&[4], &count_kernel, &probe, 2);
    assert!(res.probes[0].is_some());
    assert_eq!(res.probes[1], None);
    assert_eq!(res.probes[2], None);
    assert_eq!(res.probes[3], None); // 3 + 3 > 4
}

#[test]
fn giant_tile_is_a_single_tile_run() {
    let program = Program::parse(&TRIANGLE.replace("widths 4 4", "widths 1000 1000")).unwrap();
    let res = program.run_shared::<u64, _>(&[20], &count_kernel, &Probe::at(&[0, 0]), 4);
    assert_eq!(res.stats.tiles_executed, 1);
    assert_eq!(res.probes[0], Some(1 << 21));
    assert_eq!(res.stats.edges_local, 0);
}

#[test]
fn width_one_tiles_are_cells() {
    let program = Program::parse(&TRIANGLE.replace("widths 4 4", "widths 1 1")).unwrap();
    let n = 6i64;
    let res = program.run_shared::<u64, _>(&[n], &count_kernel, &Probe::at(&[0, 0]), 3);
    assert_eq!(res.stats.tiles_executed, ((n + 1) * (n + 2) / 2) as u64);
    assert_eq!(res.probes[0], Some(1 << (n + 1)));
}

#[test]
fn oversubscribed_threads_work() {
    // Far more threads than tiles.
    let program = Program::parse(TRIANGLE).unwrap();
    let res = program.run_shared::<u64, _>(&[6], &count_kernel, &Probe::at(&[0, 0]), 32);
    assert_eq!(res.probes[0], Some(1 << 7));
}

#[test]
fn zero_threads_clamps_to_one() {
    let program = Program::parse(TRIANGLE).unwrap();
    let res = program.run_shared::<u64, _>(&[5], &count_kernel, &Probe::at(&[0, 0]), 0);
    assert_eq!(res.probes[0], Some(1 << 6));
    assert_eq!(res.stats.threads, 1);
}

#[test]
fn hybrid_more_ranks_than_tiles() {
    let a = random_sequence(6, 1);
    let b = random_sequence(5, 2);
    let problem = EditDistance::new(&a, &b);
    let program = EditDistance::program(4).unwrap(); // few tiles
    let params = problem.params();
    let res =
        program.run_hybrid::<i64, _>(&params, &problem, &Probe::at(&[params[0], params[1]]), 6, 2);
    assert_eq!(res.probes[0].unwrap(), problem.solve_dense());
}

#[test]
fn degenerate_one_dimensional_problem() {
    let program =
        Program::parse("vars x\nparams N\nconstraint 0 <= x <= N\ntemplate r 1\nwidths 5\n")
            .unwrap();
    let kernel = |cell: CellRef<'_>, values: &mut [u64]| {
        values[cell.loc] = if cell.valid[0] {
            values[cell.loc_r(0)] + 1
        } else {
            1
        };
    };
    let res = dpgen::runtime::run_shared::<u64, _>(
        program.tiling(),
        &[17],
        &kernel,
        &Probe::at(&[0]),
        2,
        TilePriority::Fifo,
    );
    assert_eq!(res.probes[0], Some(18));
}

#[test]
fn empty_iteration_space_for_parameters() {
    // Context N >= 2 excluded by N = 1: no tiles, run completes trivially.
    let program =
        Program::parse("vars x\nparams N\nconstraint 2 <= x <= N\ntemplate r 1\nwidths 3\n")
            .unwrap();
    let kernel = |cell: CellRef<'_>, values: &mut [u64]| {
        values[cell.loc] = cell.x[0] as u64;
    };
    let res = dpgen::runtime::run_shared::<u64, _>(
        program.tiling(),
        &[1],
        &kernel,
        &Probe::at(&[2]),
        2,
        TilePriority::Fifo,
    );
    assert_eq!(res.stats.tiles_executed, 0);
    assert_eq!(res.probes[0], None);
}
