//! Failure handling and edge cases across the stack: malformed inputs,
//! degenerate problems, and — the fault-injection matrix — hybrid runs over
//! a wire that drops, duplicates, reorders and corrupts packets, which must
//! be bit-identical to fault-free runs or fail with a typed diagnosis.

use dpgen::core::{BalanceMethod, Program, ProgramError, RunBuilder};
use dpgen::mpisim::{CommConfig, FaultPlan, ReliabilityConfig};
use dpgen::problems::{random_sequence, EditDistance, Lcs};
use dpgen::runtime::{
    run_node, Kernel, NodeConfig, NullTransport, Probe, RunError, TileOwner, TilePriority,
    TransportError,
};
use dpgen::tiling::tiling::CellRef;
use dpgen::tiling::Coord;
use proptest::prelude::*;
use std::time::Duration;

fn count_kernel(cell: CellRef<'_>, values: &mut [u64]) {
    let a = if cell.valid[0] {
        values[cell.loc_r(0)]
    } else {
        1
    };
    let b = if cell.valid[1] {
        values[cell.loc_r(1)]
    } else {
        1
    };
    values[cell.loc] = a + b;
}

const TRIANGLE: &str = "name t\nvars x y\nparams N\n\
    constraint x >= 0\nconstraint y >= 0\nconstraint x + y <= N\n\
    template r1 1 0\ntemplate r2 0 1\nwidths 4 4\n";

#[test]
fn malformed_specs_are_rejected_not_panicking() {
    for bad in [
        "",                                                         // empty
        "vars x\n",                                                 // no constraints
        "vars x\nconstraint 0 <= x <= 5\n",                         // no widths
        "vars x\nconstraint 0 <= x <= 5\nwidths 0\n",               // zero width
        "vars x\nconstraint 0 <= x <= 5\nwidths 2\ntemplate r 0\n", // zero template
        "vars x y\nconstraint 0 <= x <= 5\nconstraint 0 <= y <= 5\nwidths 2 2\n\
         template a 1 0\ntemplate b -1 0\n", // mixed signs
        "vars x\nconstraint x >= 0\nwidths 2\n",                    // unbounded
        "vars x\nconstraint 0 <= x <= zz\nwidths 2\n",              // unknown name
    ] {
        assert!(Program::parse(bad).is_err(), "accepted: {bad:?}");
    }
}

#[test]
fn error_messages_are_informative() {
    let err = Program::parse("vars x\nbogus\n").unwrap_err();
    assert!(err.to_string().contains("line 2"), "{err}");
    let err = Program::parse("vars x\nconstraint x >= 0\nwidths 2\n").unwrap_err();
    match &err {
        ProgramError::Tiling(e) => assert!(e.to_string().contains("unbounded"), "{e}"),
        other => panic!("expected tiling error, got {other}"),
    }
}

#[test]
fn zero_size_problem_runs() {
    // N = 0: a single cell at the origin.
    let program = Program::parse(TRIANGLE).unwrap();
    let res = program
        .runner::<u64>(&[0])
        .threads(4)
        .probe(Probe::at(&[0, 0]))
        .run(&count_kernel)
        .unwrap();
    assert_eq!(res.probes[0], Some(2)); // both deps invalid -> 1 + 1
    assert_eq!(res.per_rank[0].stats.cells_computed, 1);
}

#[test]
fn probes_outside_space_are_none_not_panics() {
    let program = Program::parse(TRIANGLE).unwrap();
    let probe = Probe::many(&[&[0, 0], &[100, 100], &[-3, 0], &[3, 3]]);
    let res = program
        .runner::<u64>(&[4])
        .threads(2)
        .probe(probe)
        .run(&count_kernel)
        .unwrap();
    assert!(res.probes[0].is_some());
    assert_eq!(res.probes[1], None);
    assert_eq!(res.probes[2], None);
    assert_eq!(res.probes[3], None); // 3 + 3 > 4
}

#[test]
fn giant_tile_is_a_single_tile_run() {
    let program = Program::parse(&TRIANGLE.replace("widths 4 4", "widths 1000 1000")).unwrap();
    let res = program
        .runner::<u64>(&[20])
        .threads(4)
        .probe(Probe::at(&[0, 0]))
        .run(&count_kernel)
        .unwrap();
    assert_eq!(res.per_rank[0].stats.tiles_executed, 1);
    assert_eq!(res.probes[0], Some(1 << 21));
    assert_eq!(res.per_rank[0].stats.edges_local, 0);
}

#[test]
fn width_one_tiles_are_cells() {
    let program = Program::parse(&TRIANGLE.replace("widths 4 4", "widths 1 1")).unwrap();
    let n = 6i64;
    let res = program
        .runner::<u64>(&[n])
        .threads(3)
        .probe(Probe::at(&[0, 0]))
        .run(&count_kernel)
        .unwrap();
    assert_eq!(
        res.per_rank[0].stats.tiles_executed,
        ((n + 1) * (n + 2) / 2) as u64
    );
    assert_eq!(res.probes[0], Some(1 << (n + 1)));
}

#[test]
fn oversubscribed_threads_work() {
    // Far more threads than tiles.
    let program = Program::parse(TRIANGLE).unwrap();
    let res = program
        .runner::<u64>(&[6])
        .threads(32)
        .probe(Probe::at(&[0, 0]))
        .run(&count_kernel)
        .unwrap();
    assert_eq!(res.probes[0], Some(1 << 7));
}

#[test]
fn zero_threads_clamps_to_one() {
    let program = Program::parse(TRIANGLE).unwrap();
    let res = program
        .runner::<u64>(&[5])
        .threads(0)
        .probe(Probe::at(&[0, 0]))
        .run(&count_kernel)
        .unwrap();
    assert_eq!(res.probes[0], Some(1 << 6));
    assert_eq!(res.per_rank[0].stats.threads, 1);
}

#[test]
fn hybrid_more_ranks_than_tiles() {
    let a = random_sequence(6, 1);
    let b = random_sequence(5, 2);
    let problem = EditDistance::new(&a, &b);
    let program = EditDistance::program(4).unwrap(); // few tiles
    let params = problem.params();
    let res = program
        .runner::<i64>(&params)
        .ranks(6)
        .threads(2)
        .probe(Probe::at(&[params[0], params[1]]))
        .run(&problem)
        .unwrap();
    assert_eq!(res.probes[0].unwrap(), problem.solve_dense());
}

#[test]
fn degenerate_one_dimensional_problem() {
    let program =
        Program::parse("vars x\nparams N\nconstraint 0 <= x <= N\ntemplate r 1\nwidths 5\n")
            .unwrap();
    let kernel = |cell: CellRef<'_>, values: &mut [u64]| {
        values[cell.loc] = if cell.valid[0] {
            values[cell.loc_r(0)] + 1
        } else {
            1
        };
    };
    let res = RunBuilder::<u64>::on_tiling(program.tiling(), &[17])
        .threads(2)
        .priority(TilePriority::Fifo)
        .probe(Probe::at(&[0]))
        .run(&kernel)
        .unwrap();
    assert_eq!(res.probes[0], Some(18));
}

/// A faulty-wire communicator configuration: every knob tightened so small
/// test problems exercise retransmission quickly.
fn faulty_comm(plan: FaultPlan) -> CommConfig {
    CommConfig {
        send_buffers: 2,
        recv_buffers: 2,
        reliability: ReliabilityConfig {
            ack_timeout: Duration::from_millis(1),
            max_backoff: Duration::from_millis(20),
            ..ReliabilityConfig::default()
        },
        faults: Some(plan),
    }
}

/// The seeded fault matrix (drop / duplicate / reorder / corrupt /
/// everything × LCS / edit distance × 1, 2, 4 ranks): every cell must be
/// bit-identical to the dense reference, with retransmit work bounded —
/// faults cost bandwidth, never correctness.
#[test]
fn seeded_fault_matrix_is_bit_identical() {
    let a = random_sequence(14, 21);
    let b = random_sequence(13, 22);
    let lcs = Lcs::new(&[&a, &b]);
    let lcs_program = Lcs::program(2, 3).unwrap();
    let lcs_want = lcs.solve_dense();
    let ed = EditDistance::new(&a, &b);
    let ed_program = EditDistance::program(3).unwrap();
    let ed_want = ed.solve_dense();

    let plans = [
        ("drop", FaultPlan::drops(11, 0.2)),
        (
            "dup",
            FaultPlan {
                duplicate: 0.25,
                ..FaultPlan::none().with_seed(12)
            },
        ),
        (
            "reorder",
            FaultPlan {
                reorder: 0.3,
                ..FaultPlan::none().with_seed(13)
            },
        ),
        (
            "corrupt",
            FaultPlan {
                corrupt: 0.2,
                ..FaultPlan::none().with_seed(14)
            },
        ),
        ("all", FaultPlan::uniform(15, 0.15)),
    ];
    for (name, plan) in plans {
        for ranks in [1usize, 2, 4] {
            let res = lcs_program
                .runner::<i64>(&lcs.params())
                .ranks(ranks)
                .threads(1)
                .comm(faulty_comm(plan))
                .balance(BalanceMethod::Slabs { lb_dims: vec![0] })
                .stall_timeout(Some(Duration::from_secs(20)))
                .probe(Probe::at(&lcs.goal()))
                .run(&lcs)
                .unwrap_or_else(|e| panic!("lcs {name} ranks={ranks}: {e}"));
            assert_eq!(res.probes[0], Some(lcs_want), "lcs {name} ranks={ranks}");

            let res = ed_program
                .runner::<i64>(&ed.params())
                .ranks(ranks)
                .threads(1)
                .comm(faulty_comm(plan))
                .balance(BalanceMethod::Slabs { lb_dims: vec![0] })
                .stall_timeout(Some(Duration::from_secs(20)))
                .probe(Probe::at(&[ed.params()[0], ed.params()[1]]))
                .run(&ed)
                .unwrap_or_else(|e| panic!("editdist {name} ranks={ranks}: {e}"));
            assert_eq!(
                res.probes[0],
                Some(ed_want),
                "editdist {name} ranks={ranks}"
            );

            // Retransmits stay proportional to traffic (no livelock): each
            // first transmission can cost at most a small number of
            // recovery rounds at these fault rates.
            let sent: u64 = res.comm_stats.iter().map(|s| s.msgs_sent()).sum();
            let retrans = res.retransmits();
            assert!(
                retrans <= 50 * sent + 100,
                "editdist {name} ranks={ranks}: {retrans} retransmits for {sent} sends"
            );
            if ranks > 1 && plan.drop > 0.0 {
                let dropped: u64 = res.comm_stats.iter().map(|s| s.faults_dropped()).sum();
                assert!(dropped > 0, "{name} ranks={ranks}: plan injected nothing");
            }
        }
    }
}

/// Acceptance wedge: 100% drop with a zero retransmit budget must terminate
/// with `RunError::Stalled` carrying a scheduler snapshot — not hang.
#[test]
fn wedged_run_terminates_with_stall_snapshot() {
    let a = random_sequence(16, 31);
    let b = random_sequence(15, 32);
    let problem = EditDistance::new(&a, &b);
    let program = EditDistance::program(4).unwrap();
    let err = program
        .runner::<i64>(&problem.params())
        .ranks(2)
        .threads(1)
        .comm(CommConfig {
            // A window large enough that the sender never blocks: both
            // ranks end up waiting on traffic that can never arrive.
            send_buffers: 64,
            recv_buffers: 4,
            reliability: ReliabilityConfig {
                ack_timeout: Duration::from_millis(1),
                max_backoff: Duration::from_millis(5),
                max_retransmits: 0,
                send_timeout: Some(Duration::from_secs(5)),
            },
            faults: Some(FaultPlan::drops(99, 1.0)),
        })
        .balance(BalanceMethod::Slabs { lb_dims: vec![0] })
        .stall_timeout(Some(Duration::from_millis(400)))
        .run(&problem)
        .unwrap_err();
    match &err {
        RunError::Stalled(snap) => {
            assert!(snap.stalled_for >= Duration::from_millis(400));
            assert_eq!(snap.threads, 1);
            // The snapshot names the wedge: the display mentions progress
            // counts and any pending shards.
            let text = err.to_string();
            assert!(text.contains("no progress"), "{text}");
            assert!(text.contains("tiles executed"), "{text}");
        }
        other => panic!("expected Stalled, got {other}"),
    }
}

/// A mis-partitioned single-node run (owner claims a foreign rank exists,
/// but the transport is Null) surfaces `TransportError::NoRoute` as a typed
/// run failure instead of aborting a worker thread.
#[test]
fn mispartitioned_null_transport_is_a_typed_error() {
    struct SplitOwner;
    impl TileOwner for SplitOwner {
        fn owner_of(&self, tile: &Coord) -> usize {
            (tile[0] % 2) as usize
        }
    }
    let program = Program::parse(TRIANGLE).unwrap();
    let config = NodeConfig::new(2, 2).with_stall_timeout(Some(Duration::from_secs(10)));
    let err = run_node::<u64, _, _, _>(
        program.tiling(),
        &[16],
        &count_kernel,
        &SplitOwner,
        &NullTransport::default(),
        &Probe::default(),
        &config,
    )
    .unwrap_err();
    match &err {
        RunError::Transport(TransportError::NoRoute { dest: 1, .. }) => {}
        other => panic!("expected NoRoute to rank 1, got {other}"),
    }
}

/// A panicking kernel in a multi-rank run is quarantined with its tile
/// coordinate and cancels the sibling rank promptly.
#[test]
fn hybrid_kernel_panic_quarantines_the_tile() {
    let a = random_sequence(12, 5);
    let b = random_sequence(12, 6);
    let problem = EditDistance::new(&a, &b);
    let program = EditDistance::program(3).unwrap();
    struct Bomb(EditDistance);
    impl Kernel<i64> for Bomb {
        fn compute(&self, cell: CellRef<'_>, values: &mut [i64]) {
            if cell.x[0] == 7 && cell.x[1] == 7 {
                panic!("poisoned cell (7,7)");
            }
            self.0.compute(cell, values);
        }
    }
    let err = program
        .runner::<i64>(&problem.params())
        .ranks(2)
        .threads(1)
        .balance(BalanceMethod::Slabs { lb_dims: vec![0] })
        .stall_timeout(Some(Duration::from_secs(10)))
        .run(&Bomb(problem.clone()))
        .unwrap_err();
    match &err {
        RunError::KernelPanic { tile, message, .. } => {
            // Cell (7,7) lives in tile (2,2) with width 3.
            assert_eq!(*tile, Coord::from_slice(&[2, 2]));
            assert!(message.contains("poisoned cell"), "{message}");
        }
        other => panic!("expected KernelPanic, got {other}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The headline reliability property: for ANY seeded fault schedule
    /// with drop rate < 1, a consistency problem over the faulty wire is
    /// bit-identical to the dense reference scan.
    #[test]
    fn any_fault_schedule_below_total_loss_is_bit_identical(
        seed in 0u64..u64::MAX,
        drop in 0.0f64..0.8,
        duplicate in 0.0f64..0.5,
        reorder in 0.0f64..0.5,
        corrupt in 0.0f64..0.4,
        max_delay in 1u32..12,
        ranks in 2usize..5,
        alen in 8usize..16,
        blen in 8usize..16,
    ) {
        let a = random_sequence(alen, seed ^ 0x5EED);
        let b = random_sequence(blen, seed ^ 0xFEED);
        let problem = EditDistance::new(&a, &b);
        let program = EditDistance::program(3).unwrap();
        let plan = FaultPlan { seed, drop, duplicate, reorder, corrupt, max_delay };
        let res = program
            .runner::<i64>(&problem.params())
            .ranks(ranks)
            .threads(1)
            .comm(faulty_comm(plan))
            .balance(BalanceMethod::Slabs { lb_dims: vec![0] })
            .stall_timeout(Some(Duration::from_secs(20)))
            .probe(Probe::at(&[problem.params()[0], problem.params()[1]]))
            .run(&problem)
            .unwrap();
        prop_assert_eq!(res.probes[0], Some(problem.solve_dense()));
    }
}

#[test]
fn empty_iteration_space_for_parameters() {
    // Context N >= 2 excluded by N = 1: no tiles, run completes trivially.
    let program =
        Program::parse("vars x\nparams N\nconstraint 2 <= x <= N\ntemplate r 1\nwidths 3\n")
            .unwrap();
    let kernel = |cell: CellRef<'_>, values: &mut [u64]| {
        values[cell.loc] = cell.x[0] as u64;
    };
    let res = RunBuilder::<u64>::on_tiling(program.tiling(), &[1])
        .threads(2)
        .priority(TilePriority::Fifo)
        .probe(Probe::at(&[2]))
        .run(&kernel)
        .unwrap();
    assert_eq!(res.per_rank[0].stats.tiles_executed, 0);
    assert_eq!(res.probes[0], None);
}
