//! Figure 4's peak-memory analysis, pinned quantitatively: on an `n × n`
//! tile grid executed serially, column-major order buffers about `n + 1`
//! edges while level-set order buffers about `2(n − 1)` — almost `d` times
//! more (Section V-B).

use dpgen::core::{Program, RunBuilder};
use dpgen::runtime::TilePriority;
use dpgen::tiling::tiling::CellRef;

fn grid(n_tiles: i64, width: i64) -> (Program, i64) {
    let n = n_tiles * width - 1;
    let program = Program::parse(&format!(
        "name grid\nvars x y\nparams N\n\
         constraint 0 <= x <= N\nconstraint 0 <= y <= N\n\
         template r1 1 0\ntemplate r2 0 1\n\
         order x y\nloadbalance x\nwidths {width} {width}\n"
    ))
    .unwrap();
    (program, n)
}

fn kernel(cell: CellRef<'_>, values: &mut [u64]) {
    let a = if cell.valid[0] {
        values[cell.loc_r(0)]
    } else {
        1
    };
    let b = if cell.valid[1] {
        values[cell.loc_r(1)]
    } else {
        1
    };
    values[cell.loc] = a.wrapping_add(b);
}

fn peak_edges(program: &Program, n: i64, priority: TilePriority) -> i64 {
    let res = RunBuilder::<u64>::on_tiling(program.tiling(), &[n])
        .threads(1)
        .priority(priority)
        .run(&kernel)
        .unwrap();
    res.per_rank[0].stats.peak_edges
}

#[test]
fn column_major_buffers_about_n_plus_one() {
    for n_tiles in [8i64, 12, 20] {
        let (program, n) = grid(n_tiles, 3);
        let peak = peak_edges(&program, n, TilePriority::column_major(2));
        assert!(
            (n_tiles..=n_tiles + 2).contains(&peak),
            "n = {n_tiles}: peak {peak} not near n + 1 = {}",
            n_tiles + 1
        );
    }
}

#[test]
fn level_set_buffers_about_twice_n() {
    for n_tiles in [8i64, 12, 20] {
        let (program, n) = grid(n_tiles, 3);
        let peak = peak_edges(&program, n, TilePriority::LevelSet);
        let model = 2 * (n_tiles - 1);
        assert!(
            (peak - model).abs() <= 3,
            "n = {n_tiles}: peak {peak} not near 2(n-1) = {model}"
        );
    }
}

#[test]
fn ratio_approaches_dimension_count() {
    // Section V-B: level-set can use nearly d = 2 times the column-major
    // edge memory.
    let (program, n) = grid(24, 2);
    let col = peak_edges(&program, n, TilePriority::column_major(2));
    let level = peak_edges(&program, n, TilePriority::LevelSet);
    let ratio = level as f64 / col as f64;
    assert!(
        (1.6..=2.2).contains(&ratio),
        "ratio {ratio} should approach d = 2 (col {col}, level {level})"
    );
}

#[test]
fn paper_default_matches_column_major_on_grids() {
    let (program, n) = grid(12, 3);
    let col = peak_edges(&program, n, TilePriority::column_major(2));
    let fig5 = peak_edges(&program, n, TilePriority::paper_default(2, &[0]));
    assert_eq!(col, fig5);
}
