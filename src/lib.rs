//! # dpgen — automatic hybrid "OpenMP + MPI" program generation for dynamic
//! programming problems
//!
//! This is the facade crate of the `dpgen` workspace, a Rust reproduction of
//! VandenBerg & Stout, *Automatic Hybrid OpenMP + MPI Program Generation for
//! Dynamic Programming Problems* (IEEE CLUSTER 2011). It re-exports each
//! subsystem under a short module name; see the individual crates for the
//! full APIs:
//!
//! * [`polyhedra`] — exact polyhedral math: constraint systems,
//!   Fourier–Motzkin elimination, loop-bound synthesis, lattice-point
//!   counting, Ehrhart quasi-polynomials,
//! * [`tiling`] — tile spaces, tile dependencies, validity and mapping
//!   functions, edge (ghost cell) packing layouts,
//! * [`runtime`] — the shared-memory node runtime (the "OpenMP" layer):
//!   pending-tile table, tile priority queue, worker pool, memory accounting,
//! * [`mpisim`] — the simulated message-passing layer (the "MPI" layer):
//!   ranks, bounded send/receive buffers, a polling progress engine,
//! * [`core`] — the generator itself: problem specs, the generation pipeline,
//!   load balancing, initial tile generation, the hybrid cluster driver, and
//!   traceback,
//! * [`codegen`] — emission of the hybrid C (OpenMP + MPI) program text,
//! * [`problems`] — the paper's workloads (bandit problems, multiple sequence
//!   alignment, longest common subsequence) with serial reference solvers.
//!
//! # Example
//!
//! Generate and run a parallel program for a triangular path-counting
//! recurrence from the paper's input-file format:
//!
//! ```
//! use dpgen::core::Program;
//! use dpgen::runtime::Probe;
//! use dpgen::tiling::tiling::CellRef;
//!
//! let program = Program::parse(
//!     "name tri\n\
//!      vars x y\n\
//!      params N\n\
//!      constraint x >= 0\n\
//!      constraint y >= 0\n\
//!      constraint x + y <= N\n\
//!      template r1 1 0\n\
//!      template r2 0 1\n\
//!      loadbalance x\n\
//!      widths 4 4\n",
//! ).unwrap();
//!
//! // The center-loop code: f(x) = f(x + r1) + f(x + r2), base case 1.
//! let kernel = |cell: CellRef<'_>, values: &mut [u64]| {
//!     let a = if cell.valid[0] { values[cell.loc_r(0)] } else { 1 };
//!     let b = if cell.valid[1] { values[cell.loc_r(1)] } else { 1 };
//!     values[cell.loc] = a + b;
//! };
//!
//! // Shared-memory run (2 workers), probing f(0, 0): 2^(N+1) paths.
//! let result = program
//!     .runner(&[10])
//!     .threads(2)
//!     .probe(Probe::at(&[0, 0]))
//!     .run(&kernel)
//!     .unwrap();
//! assert_eq!(result.probes[0], Some(2048u64));
//!
//! // The same problem across 2 simulated MPI ranks x 2 threads.
//! let hybrid = program
//!     .runner(&[10])
//!     .threads(2)
//!     .ranks(2)
//!     .probe(Probe::at(&[0, 0]))
//!     .run(&kernel)
//!     .unwrap();
//! assert_eq!(hybrid.probes[0], Some(2048u64));
//! ```

pub use dpgen_codegen as codegen;
pub use dpgen_core as core;
pub use dpgen_mpisim as mpisim;
pub use dpgen_polyhedra as polyhedra;
pub use dpgen_problems as problems;
pub use dpgen_runtime as runtime;
pub use dpgen_tiling as tiling;
