//! The `dpgen` command-line generator — the tool the paper describes: read
//! a high-level problem description, emit a fully functioning hybrid
//! OpenMP + MPI program, or inspect what the generator derived.
//!
//! ```text
//! dpgen emit  <spec-file> [-o out.c]    # generate the hybrid C program
//! dpgen info  <spec-file>               # show derived geometry
//! dpgen count <spec-file> <params...>   # count cells/tiles for parameters
//! ```

use dpgen::codegen::emit_c;
use dpgen::core::Program;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  dpgen emit  <spec-file> [-o <out.c>]\n  dpgen info  <spec-file>\n  dpgen count <spec-file> <param>...\n"
    );
    ExitCode::from(2)
}

fn load(path: &str) -> Result<Program, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    Program::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    match cmd.as_str() {
        "emit" => {
            let Some(path) = args.get(1) else {
                return usage();
            };
            let out = match (args.get(2).map(String::as_str), args.get(3)) {
                (Some("-o"), Some(f)) => Some(f.clone()),
                (None, _) => None,
                _ => return usage(),
            };
            let program = match load(path) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let source = emit_c(&program);
            match out {
                Some(f) => {
                    if let Err(e) = std::fs::write(&f, &source) {
                        eprintln!("error: {f}: {e}");
                        return ExitCode::FAILURE;
                    }
                    eprintln!("wrote {f} ({} lines)", source.lines().count());
                }
                None => print!("{source}"),
            }
            ExitCode::SUCCESS
        }
        "info" => {
            let Some(path) = args.get(1) else {
                return usage();
            };
            let program = match load(path) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let spec = program.spec();
            let tiling = program.tiling();
            println!("problem `{}`", spec.name);
            println!(
                "  dimensions : {} ({})",
                tiling.dims(),
                spec.vars.join(", ")
            );
            println!("  parameters : {}", spec.params.join(", "));
            println!("  tile widths: {:?}", tiling.widths());
            println!("  templates  : {}", tiling.templates().len());
            for t in tiling.templates().templates() {
                println!("    {} = {:?}", t.name, t.offset.as_slice());
            }
            println!("  scan dirs  : {:?}", tiling.templates().directions());
            println!("  tile deps  : {}", tiling.deps().len());
            for dep in tiling.deps() {
                println!("    δ = {} (templates {:?})", dep.delta, dep.templates);
            }
            println!("  tile space :");
            for c in tiling.tile_system().constraints() {
                println!("    {}", c.display(tiling.ext_space()));
            }
            println!(
                "  buffer     : {} cells/tile (ghost-padded; pads lo {:?}, hi {:?})",
                tiling.layout().size(),
                tiling.layout().pads_lo(),
                tiling.layout().pads_hi()
            );
            println!(
                "  validity   : {} unique checks across {} templates",
                tiling.validity_checks().len(),
                tiling.templates().len()
            );
            ExitCode::SUCCESS
        }
        "count" => {
            let Some(path) = args.get(1) else {
                return usage();
            };
            let program = match load(path) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let params: Result<Vec<i64>, _> = args[2..].iter().map(|a| a.parse()).collect();
            let Ok(params) = params else { return usage() };
            let tiling = program.tiling();
            if params.len() != program.spec().params.len() {
                eprintln!(
                    "error: {} parameter(s) expected ({}), got {}",
                    program.spec().params.len(),
                    program.spec().params.join(", "),
                    params.len()
                );
                return ExitCode::FAILURE;
            }
            let cells = tiling.total_cells(&params);
            let mut point = tiling.make_point(&params);
            let mut tiles = 0u64;
            let mut initial = 0u64;
            let mut coords = Vec::new();
            tiling.for_each_tile(&mut point, |t| coords.push(t));
            for t in &coords {
                tiles += 1;
                if tiling.dep_total(t, &mut point) == 0 {
                    initial += 1;
                }
            }
            println!("cells  : {cells}");
            println!("tiles  : {tiles}");
            println!("initial: {initial}");
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
