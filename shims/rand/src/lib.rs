//! Offline stand-in for the `rand` crate.
//!
//! Provides `rngs::StdRng`, `SeedableRng::seed_from_u64` and
//! `Rng::gen_range` over integer and float ranges — the surface the
//! workspace uses for reproducible test inputs. The generator is
//! xoshiro256** seeded via splitmix64; deterministic across platforms,
//! which is all the callers rely on.

use std::ops::Range;

/// Core generator: uniformly distributed `u64`s.
pub trait RngCore {
    /// Next raw 64-bit output.
    fn next_u64(&mut self) -> u64;
}

/// Construction from a simple integer seed.
pub trait SeedableRng: Sized {
    /// Deterministically derive a full generator state from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`Rng::gen_range`].
pub trait SampleUniform: Copy {
    /// Sample uniformly from `[low, high)`.
    fn sample(rng: &mut dyn RngCore, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_int {
    ($($ty:ty),+ $(,)?) => {
        $(
            impl SampleUniform for $ty {
                fn sample(rng: &mut dyn RngCore, low: Self, high: Self) -> Self {
                    assert!(low < high, "gen_range: empty range");
                    let span = (high as i128 - low as i128) as u128;
                    // Modulo bias is irrelevant at these range sizes for
                    // test-input generation.
                    let r = ((rng.next_u64() as u128) % span) as i128;
                    (low as i128 + r) as $ty
                }
            }
        )+
    };
}

impl_sample_int!(i8, i16, i32, i64, u8, u16, u32, usize);

impl SampleUniform for f64 {
    fn sample(rng: &mut dyn RngCore, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        low + unit * (high - low)
    }
}

/// Convenience sampling methods over a core generator.
pub trait Rng: RngCore {
    /// Uniform sample from a half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample(self, range.start, range.end)
    }

    /// Uniform `bool`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self, 0.0, 1.0) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Namespaced generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<usize> = (0..20).map(|_| a.gen_range(0..1000)).collect();
        let ys: Vec<usize> = (0..20).map(|_| b.gen_range(0..1000)).collect();
        let zs: Vec<usize> = (0..20).map(|_| c.gen_range(0..1000)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let u = rng.gen_range(0usize..4);
            assert!(u < 4);
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn values_spread_over_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
