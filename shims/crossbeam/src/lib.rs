//! Offline stand-in for the `crossbeam` crate.
//!
//! Only the pieces the workspace uses are provided: `channel::bounded` and
//! `channel::unbounded` with `try_send` / `try_recv`, where both endpoints
//! are `Send + Sync` (std's mpsc receiver is not `Sync`, which the
//! simulated-MPI communicator requires). The implementation is a
//! mutex-protected ring; throughput is not the point — API fidelity in a
//! no-network build environment is.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Mutex};

    struct Chan<T> {
        queue: Mutex<VecDeque<T>>,
        capacity: usize,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Error from [`Sender::try_send`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is at capacity; the message is handed back.
        Full(T),
        /// All receivers are gone; the message is handed back.
        Disconnected(T),
    }

    /// Error from [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Nothing buffered right now.
        Empty,
        /// All senders are gone and the buffer is drained.
        Disconnected,
    }

    /// Sending half of a bounded channel.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// Receiving half of a bounded channel.
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    impl<T> Sender<T> {
        /// Enqueue without blocking; `Full` hands the message back.
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            if self.chan.receivers.load(Ordering::Acquire) == 0 {
                return Err(TrySendError::Disconnected(msg));
            }
            let mut q = self.chan.queue.lock().unwrap_or_else(|e| e.into_inner());
            if q.len() >= self.chan.capacity {
                return Err(TrySendError::Full(msg));
            }
            q.push_back(msg);
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Dequeue without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.chan.queue.lock().unwrap_or_else(|e| e.into_inner());
            match q.pop_front() {
                Some(m) => Ok(m),
                None if self.chan.senders.load(Ordering::Acquire) == 0 => {
                    Err(TryRecvError::Disconnected)
                }
                None => Err(TryRecvError::Empty),
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.chan.senders.fetch_add(1, Ordering::AcqRel);
            Sender {
                chan: self.chan.clone(),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            self.chan.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver {
                chan: self.chan.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            self.chan.senders.fetch_sub(1, Ordering::AcqRel);
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.chan.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    /// Create a bounded channel holding at most `capacity` messages.
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            queue: Mutex::new(VecDeque::with_capacity(capacity.min(1024))),
            capacity: capacity.max(1),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (Sender { chan: chan.clone() }, Receiver { chan })
    }

    /// Create a channel with no capacity limit; `try_send` never returns
    /// [`TrySendError::Full`].
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            queue: Mutex::new(VecDeque::new()),
            capacity: usize::MAX,
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (Sender { chan: chan.clone() }, Receiver { chan })
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn roundtrip_and_capacity() {
            let (tx, rx) = bounded(2);
            tx.try_send(1).unwrap();
            tx.try_send(2).unwrap();
            assert_eq!(tx.try_send(3), Err(TrySendError::Full(3)));
            assert_eq!(rx.try_recv(), Ok(1));
            tx.try_send(3).unwrap();
            assert_eq!(rx.try_recv(), Ok(2));
            assert_eq!(rx.try_recv(), Ok(3));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn unbounded_never_fills() {
            let (tx, rx) = unbounded();
            for k in 0..10_000 {
                tx.try_send(k).unwrap();
            }
            for k in 0..10_000 {
                assert_eq!(rx.try_recv(), Ok(k));
            }
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn disconnect_is_observed() {
            let (tx, rx) = bounded::<i32>(1);
            drop(rx);
            assert_eq!(tx.try_send(1), Err(TrySendError::Disconnected(1)));
            let (tx, rx) = bounded::<i32>(1);
            tx.try_send(7).unwrap();
            drop(tx);
            assert_eq!(rx.try_recv(), Ok(7));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn endpoints_are_shareable_across_threads() {
            let (tx, rx) = bounded(64);
            std::thread::scope(|s| {
                s.spawn(|| {
                    for k in 0..100 {
                        while tx.try_send(k).is_err() {
                            std::thread::yield_now();
                        }
                    }
                });
                s.spawn(|| {
                    let mut got = 0;
                    while got < 100 {
                        if rx.try_recv().is_ok() {
                            got += 1;
                        } else {
                            std::thread::yield_now();
                        }
                    }
                });
            });
        }
    }
}
