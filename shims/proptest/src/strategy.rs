//! Value-generation strategies (no shrinking — see the crate docs).

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generate an intermediate value, then generate from the strategy it
    /// selects.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`crate::sample::select`].
#[derive(Debug, Clone)]
pub struct Select<T: Clone> {
    pub(crate) options: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        assert!(!self.options.is_empty(), "select from empty set");
        self.options[rng.below(self.options.len() as u64) as usize].clone()
    }
}

macro_rules! impl_int_range {
    ($($ty:ty),+ $(,)?) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let r = (rng.next_u64() as u128 % span) as i128;
                    (self.start as i128 + r) as $ty
                }
            }

            impl Strategy for RangeInclusive<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start() <= self.end(), "empty range strategy");
                    let span = (*self.end() as i128 - *self.start() as i128) as u128 + 1;
                    let r = (rng.next_u64() as u128 % span) as i128;
                    (*self.start() as i128 + r) as $ty
                }
            }
        )+
    };
}

impl_int_range!(i8, i16, i32, i64, i128, u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start() + rng.unit_f64() * (self.end() - self.start())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+)    ;
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Length distribution for [`crate::collection::vec`].
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

/// See [`crate::collection::vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi_inclusive - self.size.lo + 1) as u64;
        let len = self.size.lo + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
