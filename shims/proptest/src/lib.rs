//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset the workspace's property tests use: the
//! [`proptest!`] macro, range / tuple / `Just` / mapped / flat-mapped
//! strategies, `collection::vec`, `sample::select`, `bool::ANY`, the
//! `prop_assert*` macros and `ProptestConfig::with_cases`.
//!
//! Differences from real proptest, deliberate for an offline build:
//! no shrinking (a failing case panics with its case number and the
//! generated inputs are reproducible from the fixed per-test seed), and
//! the default case count is 64 rather than 256 to keep `cargo test`
//! fast on small containers.

pub mod strategy;
pub mod test_runner;

/// `proptest::collection` — strategies for collections.
pub mod collection {
    use crate::strategy::{SizeRange, Strategy, VecStrategy};

    /// Strategy for `Vec`s whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// `proptest::sample` — strategies drawing from explicit value sets.
pub mod sample {
    use crate::strategy::Select;

    /// Strategy choosing uniformly from `options`.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        Select { options }
    }
}

/// `proptest::bool` — boolean strategies.
pub mod bool {
    /// Uniform `bool` strategy.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The uniform `bool` strategy value.
    pub const ANY: Any = Any;

    impl crate::strategy::Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut crate::test_runner::TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Everything a test module needs, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Run `cases` deterministic cases of a property. Used by [`proptest!`];
/// kept as a function so the failure report is uniform.
pub fn run_cases(
    name: &str,
    cases: u32,
    mut case: impl FnMut(&mut test_runner::TestRng) -> Result<(), test_runner::TestCaseError>,
) {
    let mut rng = test_runner::TestRng::for_test(name);
    for k in 0..cases {
        if let Err(e) = case(&mut rng) {
            panic!("property `{name}` failed at case {k}/{cases}: {e}");
        }
    }
}

/// The property-test entry macro. Matches real proptest's surface:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(16))]
///     #[test]
///     fn my_property(x in 0i64..10, v in proptest::collection::vec(0u8..4, 0..25)) {
///         prop_assert!(x >= 0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            $crate::run_cases(stringify!($name), config.cases, |__rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                { $body }
                ::core::result::Result::Ok(())
            });
        }
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
}

/// Assert inside a property; failure reports the generated case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {} ({})", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {} == {}: {:?} vs {:?}",
                        stringify!($left), stringify!($right), l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {} == {}: {:?} vs {:?} ({})",
                        stringify!($left), stringify!($right), l, r, format!($($fmt)+)),
            ));
        }
    }};
}

/// Skip the current case when its inputs don't meet a precondition.
/// Unlike real proptest this does not generate a replacement case; with
/// deterministic seeds the retained case count is stable, which is enough
/// for the workspace's uses.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Ok(());
        }
    };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(l != r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} != {}: both {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in -5i64..5, y in 0u8..4, f in -1.0f64..1.0) {
            prop_assert!((-5..5).contains(&x));
            prop_assert!(y < 4);
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_lengths_respected(v in crate::collection::vec(0i64..10, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| (0..10).contains(&x)));
        }

        #[test]
        fn early_return_ok_works(x in 0i64..10) {
            if x > 100 {
                prop_assert!(false, "unreachable {}", x);
            }
            if x >= 0 {
                return Ok(());
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        #[test]
        fn config_cases_accepted(pair in (0i64..3, 0i64..3), b in crate::bool::ANY) {
            prop_assert!(pair.0 < 3 && pair.1 < 3);
            let _ = b;
        }
    }

    #[test]
    fn combinators_compose() {
        use crate::strategy::Strategy;
        let strat = crate::collection::vec((0i64..4, 1i64..5), 1..=3)
            .prop_map(|pairs| pairs.iter().map(|&(a, b)| a * b).sum::<i64>());
        let mut rng = crate::test_runner::TestRng::for_test("combinators_compose");
        for _ in 0..50 {
            let v = strat.generate(&mut rng);
            assert!((0..=3 * 12).contains(&v));
        }
        let flat = Just(5i64).prop_flat_map(|n| 0i64..n);
        for _ in 0..50 {
            assert!((0..5).contains(&flat.generate(&mut rng)));
        }
        let sel = crate::sample::select(vec!["a", "b"]);
        for _ in 0..20 {
            assert!(["a", "b"].contains(&sel.generate(&mut rng)));
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_case_number() {
        crate::run_cases("always_fails", 3, |_| {
            Err(crate::test_runner::TestCaseError::fail("nope".to_string()))
        });
    }
}
