//! Deterministic case runner: config, RNG, and the error type carried by
//! `prop_assert*`.

use std::fmt;

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// A failed property case (produced by the `prop_assert*` macros or an
/// explicit `Err` return).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Failure with a message.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Deterministic generator for strategy sampling: xoshiro256** seeded from
/// a hash of the property's name, so every property gets a stable but
/// distinct stream and failures reproduce without recording a seed.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl TestRng {
    /// Stable generator for the named property.
    pub fn for_test(name: &str) -> TestRng {
        // FNV-1a over the name picks the seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        let mut sm = h;
        TestRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)` (`bound` must be nonzero).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_stable_per_name() {
        let mut a = TestRng::for_test("x");
        let mut b = TestRng::for_test("x");
        let mut c = TestRng::for_test("y");
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn below_and_unit_bounds() {
        let mut rng = TestRng::for_test("bounds");
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
            let f = rng.unit_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn config_defaults() {
        assert_eq!(ProptestConfig::default().cases, 64);
        assert_eq!(ProptestConfig::with_cases(5).cases, 5);
    }
}
