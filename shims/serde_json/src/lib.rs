//! Offline shim for the `serde_json` API surface this workspace uses:
//! [`from_str`] into a dynamic [`Value`], the usual accessors, and
//! `Index` by key or position. No serde derive machinery — the workspace
//! only parses and inspects JSON (Chrome-trace validation in tests and
//! CI), it never round-trips typed structs.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(BTreeMap<String, Value>),
}

/// Parse error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
    offset: usize,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for Error {}

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) if n.fract() == 0.0 && n.abs() < 9.0e18 => Some(*n as i64),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self.as_i64() {
            Some(n) if n >= 0 => Some(n as u64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Object-key or array-index lookup, `None` on mismatch (unlike
    /// `Index`, which returns `Null`).
    pub fn get<I: IndexKey>(&self, index: I) -> Option<&Value> {
        index.lookup(self)
    }
}

/// Keys usable with [`Value::get`] and `value[...]`.
pub trait IndexKey {
    fn lookup<'a>(&self, v: &'a Value) -> Option<&'a Value>;
}

impl IndexKey for usize {
    fn lookup<'a>(&self, v: &'a Value) -> Option<&'a Value> {
        v.as_array().and_then(|a| a.get(*self))
    }
}

impl IndexKey for &str {
    fn lookup<'a>(&self, v: &'a Value) -> Option<&'a Value> {
        v.as_object().and_then(|o| o.get(*self))
    }
}

impl IndexKey for String {
    fn lookup<'a>(&self, v: &'a Value) -> Option<&'a Value> {
        v.as_object().and_then(|o| o.get(self.as_str()))
    }
}

const NULL: Value = Value::Null;

impl<I: IndexKey> std::ops::Index<I> for Value {
    type Output = Value;
    fn index(&self, index: I) -> &Value {
        index.lookup(self).unwrap_or(&NULL)
    }
}

/// Parse a JSON document from text.
pub fn from_str(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> Error {
        Error {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(self.err("bad \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by the
                            // workspace's ASCII-escaped output; map
                            // unpaired surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // boundaries are valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("invalid utf-8"))?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(from_str("null").unwrap(), Value::Null);
        assert_eq!(from_str("true").unwrap(), Value::Bool(true));
        assert_eq!(from_str(" false ").unwrap(), Value::Bool(false));
        assert_eq!(from_str("42").unwrap().as_i64(), Some(42));
        assert_eq!(from_str("-3.5e2").unwrap().as_f64(), Some(-350.0));
        assert_eq!(from_str("\"hi\\n\"").unwrap().as_str(), Some("hi\n"));
    }

    #[test]
    fn parses_nested_structures() {
        let v = from_str(r#"{"a": [1, 2, {"b": "x"}], "c": null}"#).unwrap();
        assert_eq!(v["a"][0].as_i64(), Some(1));
        assert_eq!(v["a"][2]["b"].as_str(), Some("x"));
        assert!(v["c"].is_null());
        assert!(v["missing"].is_null());
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("nope"), None);
    }

    #[test]
    fn unicode_escapes_decode() {
        let v = from_str(r#""tile ( 4, 2 ) µs""#).unwrap();
        assert_eq!(v.as_str(), Some("tile ( 4, 2 ) µs"));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str("").is_err());
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("{\"a\" 1}").is_err());
        assert!(from_str("12 34").is_err());
        assert!(from_str("nul").is_err());
    }

    #[test]
    fn chrome_trace_shape_roundtrips() {
        let doc = r#"{"traceEvents": [
            {"name": "tile (0, 0)", "ph": "X", "pid": 0, "tid": 1,
             "ts": 1.25, "dur": 3.5, "args": {"cells": 16}},
            {"name": "thread_name", "ph": "M", "pid": 0, "tid": 1,
             "args": {"name": "worker 1"}}
        ], "displayTimeUnit": "ms"}"#;
        let v = from_str(doc).unwrap();
        let events = v["traceEvents"].as_array().unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0]["ph"].as_str(), Some("X"));
        assert_eq!(events[0]["ts"].as_f64(), Some(1.25));
        assert_eq!(events[0]["args"]["cells"].as_u64(), Some(16));
        assert_eq!(events[1]["args"]["name"].as_str(), Some("worker 1"));
    }
}
