//! Offline stand-in for the `parking_lot` crate.
//!
//! This workspace builds in environments with no crates.io access, so the
//! external synchronisation crate is replaced by a thin wrapper over
//! `std::sync` exposing the same API surface the workspace uses: a
//! non-poisoning [`Mutex`] whose `lock` returns a guard directly, and a
//! [`Condvar`] whose `wait_for` takes the guard by `&mut`.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::time::Duration;

/// Non-poisoning mutex (panicking while holding the lock does not poison
/// it for later users — matching `parking_lot` semantics).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    /// Acquire the lock only if it is free right now.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

/// Guard returned by [`Mutex::lock`]. The inner `Option` exists only so
/// [`Condvar::wait_for`] can temporarily take std's guard out by value.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken")
    }
}

/// Result of a timed condition-variable wait.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// True when the wait ended by timeout rather than notification.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable with `parking_lot`'s `&mut guard` calling convention.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// New condition variable.
    pub const fn new() -> Condvar {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Block until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard taken");
        let inner = self.inner.wait(inner).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(inner);
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard taken");
        let (inner, result) = self
            .inner
            .wait_timeout(inner, timeout)
            .unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(inner);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn try_lock_contended_is_none() {
        let m = Mutex::new(());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn condvar_roundtrip() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = pair.clone();
        let h = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            *m.lock() = true;
            cv.notify_one();
        });
        let (m, cv) = &*pair;
        let mut guard = m.lock();
        while !*guard {
            cv.wait_for(&mut guard, Duration::from_millis(50));
        }
        drop(guard);
        h.join().unwrap();
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(r.timed_out());
    }
}
