//! Offline stand-in for the `criterion` crate.
//!
//! Benchmarks in this workspace use `criterion_group!`/`criterion_main!`,
//! benchmark groups, `bench_with_input` and `Bencher::iter`. This shim
//! keeps those entry points compiling and running offline: each benchmark
//! is timed with a short warmup followed by `sample_size` timed samples,
//! and a one-line mean/min report is printed per benchmark. There is no
//! statistical analysis, HTML report, or baseline comparison.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box`, criterion-style.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Function name plus a parameter rendering.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    samples: usize,
    /// Collected per-sample durations of the most recent `iter` call.
    last: Vec<Duration>,
}

impl Bencher {
    /// Run `f` for a warmup iteration, then time `samples` iterations.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        black_box(f()); // warmup, also forces lazy setup
        self.last.clear();
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(f());
            self.last.push(t0.elapsed());
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark with an input value.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let mut bencher = Bencher {
            samples: self.sample_size,
            last: Vec::new(),
        };
        f(&mut bencher, input);
        self.criterion
            .report(&format!("{}/{}", self.name, id.name), &bencher.last);
        self
    }

    /// Run one benchmark without an input value.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut bencher = Bencher {
            samples: self.sample_size,
            last: Vec::new(),
        };
        f(&mut bencher);
        self.criterion
            .report(&format!("{}/{}", self.name, id.into()), &bencher.last);
        self
    }

    /// End the group (printing happens per-benchmark; kept for API parity).
    pub fn finish(&mut self) {}
}

/// The harness entry object handed to each benchmark function.
#[derive(Default)]
pub struct Criterion;

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Run one standalone benchmark.
    pub fn bench_function(&mut self, name: impl Into<String>, mut f: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            samples: 10,
            last: Vec::new(),
        };
        f(&mut bencher);
        self.report(&name.into(), &bencher.last);
    }

    fn report(&self, name: &str, samples: &[Duration]) {
        if samples.is_empty() {
            println!("{name:<50} (no samples)");
            return;
        }
        let total: Duration = samples.iter().sum();
        let mean = total / samples.len() as u32;
        let min = samples.iter().min().copied().unwrap_or_default();
        println!(
            "{name:<50} mean {:>12.3?}  min {:>12.3?}  ({} samples)",
            mean,
            min,
            samples.len()
        );
    }
}

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_times_and_reports() {
        let mut c = Criterion;
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut runs = 0;
        group.bench_with_input(BenchmarkId::new("f", 7), &7, |b, &x| {
            b.iter(|| {
                runs += 1;
                x * 2
            })
        });
        group.finish();
        assert_eq!(runs, 4); // 1 warmup + 3 samples
    }

    #[test]
    fn bench_function_runs() {
        let mut c = Criterion;
        let mut hits = 0;
        c.bench_function("standalone", |b| b.iter(|| hits += 1));
        assert!(hits >= 1);
    }
}
