//! Offline stand-in for the `bytes` crate.
//!
//! [`BytesMut`] is a growable byte buffer implementing [`BufMut`];
//! [`Bytes`] is a frozen buffer with a read cursor implementing [`Buf`].
//! Only the little-endian accessors the wire format uses are provided.
//! Cheap cloning is preserved by sharing the frozen storage behind an
//! `Arc` (clones of a packet do not copy the payload).

use std::sync::Arc;

macro_rules! get_methods {
    ($($name:ident -> $ty:ty),+ $(,)?) => {
        $(
            /// Read one little-endian value, advancing the cursor.
            fn $name(&mut self) -> $ty {
                const N: usize = std::mem::size_of::<$ty>();
                let chunk = self.take_bytes(N);
                <$ty>::from_le_bytes(chunk.try_into().expect("sized chunk"))
            }
        )+
    };
}

macro_rules! put_methods {
    ($($name:ident($ty:ty)),+ $(,)?) => {
        $(
            /// Append one value in little-endian encoding.
            fn $name(&mut self, v: $ty) {
                self.put_slice(&v.to_le_bytes());
            }
        )+
    };
}

/// Read-side buffer trait (cursor over bytes).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Consume and return the next `n` bytes.
    fn take_bytes(&mut self, n: usize) -> &[u8];

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        self.take_bytes(1)[0]
    }

    get_methods! {
        get_u32_le -> u32,
        get_i32_le -> i32,
        get_u64_le -> u64,
        get_i64_le -> i64,
        get_f32_le -> f32,
        get_f64_le -> f64,
    }
}

/// Write-side buffer trait (append-only).
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    put_methods! {
        put_u32_le(u32),
        put_i32_le(i32),
        put_u64_le(u64),
        put_i64_le(i64),
        put_f32_le(f32),
        put_f64_le(f64),
    }
}

/// Growable, writable byte buffer.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// New empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// New empty buffer with reserved capacity.
    pub fn with_capacity(capacity: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Written length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Freeze into an immutable, cheaply cloneable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: Arc::new(self.data),
            pos: 0,
        }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

/// Immutable shared byte buffer with a read cursor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    pos: usize,
}

impl Bytes {
    /// Unread length in bytes.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// True when fully consumed (or empty).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copy the unread bytes into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data[self.pos..].to_vec()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Bytes {
        Bytes {
            data: Arc::new(data),
            pos: 0,
        }
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn take_bytes(&mut self, n: usize) -> &[u8] {
        assert!(n <= self.len(), "buffer underrun");
        let start = self.pos;
        self.pos += n;
        &self.data[start..start + n]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_freeze_read_roundtrip() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u8(7);
        buf.put_i64_le(-42);
        buf.put_u32_le(9);
        buf.put_f64_le(1.5);
        assert_eq!(buf.len(), 1 + 8 + 4 + 8);
        let mut b = buf.freeze();
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_i64_le(), -42);
        assert_eq!(b.get_u32_le(), 9);
        assert_eq!(b.get_f64_le(), 1.5);
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    fn clone_shares_storage_and_cursor_is_independent() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(11);
        buf.put_u32_le(22);
        let mut a = buf.freeze();
        assert_eq!(a.get_u32_le(), 11);
        let mut b = a.clone();
        assert_eq!(a.get_u32_le(), 22);
        assert_eq!(b.get_u32_le(), 22);
    }

    #[test]
    fn from_vec_and_to_vec() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "underrun")]
    fn underrun_panics() {
        let mut b = Bytes::from(vec![1u8]);
        b.get_u32_le();
    }
}
